let src = Logs.Src.create "sim.engine" ~doc:"discrete-event engine"

module Log = (val Logs.src_log src : Logs.LOG)

type 'msg action =
  | Send of int * 'msg
  | Timer of float * int

type 'msg handlers = {
  on_message : now:float -> node:int -> src:int -> 'msg -> 'msg action list;
  on_link_change : now:float -> node:int -> link_id:int -> 'msg action list;
  on_timer : now:float -> node:int -> key:int -> 'msg action list;
}

let no_timers ~now:_ ~node ~key =
  invalid_arg
    (Printf.sprintf "Engine.no_timers: node %d armed timer %d" node key)

type 'msg event =
  | Deliver of { src : int; dst : int; link_id : int; msg : 'msg }
  | Link_notify of { node : int; link_id : int }
  | Timer_fire of { node : int; key : int }

type 'msg t = {
  topo : Topology.t;
  units : 'msg -> int;
  handlers : 'msg handlers;
  queue : (float * 'msg event) Heap.t;
  mutable clock : float;
  mutable sent_messages : int;
  mutable sent_units : int;
  mutable delivered : int;
  mutable processed : int;
}

type run_stats = {
  duration : float;
  messages : int;
  units : int;
  deliveries : int;
  events : int;
}

let create topo ~units ~handlers =
  let cmp (t1, _) (t2, _) = compare (t1 : float) t2 in
  { topo;
    units;
    handlers;
    queue = Heap.create ~cmp;
    clock = 0.0;
    sent_messages = 0;
    sent_units = 0;
    delivered = 0;
    processed = 0 }

let topology t = t.topo

let now t = t.clock

let perform t ~node actions =
  List.iter
    (fun action ->
      match action with
      | Send (dst, msg) -> (
        match Topology.link_between t.topo node dst with
        | None -> ()
        | Some link_id ->
          if Topology.is_up t.topo link_id then begin
            let delay = (Topology.link t.topo link_id).Topology.delay in
            t.sent_messages <- t.sent_messages + 1;
            t.sent_units <- t.sent_units + t.units msg;
            Heap.push t.queue
              (t.clock +. delay, Deliver { src = node; dst; link_id; msg })
          end)
      | Timer (delay, key) ->
        if delay < 0.0 then invalid_arg "Engine.perform: negative timer";
        Heap.push t.queue (t.clock +. delay, Timer_fire { node; key }))
    actions

let flip_link t ~link_id ~up =
  Log.debug (fun m ->
      m "t=%.3f link %d -> %s" t.clock link_id (if up then "up" else "down"));
  Topology.set_up t.topo link_id up;
  let link = Topology.link t.topo link_id in
  Heap.push t.queue (t.clock, Link_notify { node = link.Topology.a; link_id });
  Heap.push t.queue (t.clock, Link_notify { node = link.Topology.b; link_id })

exception Diverged of int

type mark = {
  m_time : float;
  m_messages : int;
  m_units : int;
  m_delivered : int;
  m_processed : int;
}

let mark t =
  { m_time = t.clock;
    m_messages = t.sent_messages;
    m_units = t.sent_units;
    m_delivered = t.delivered;
    m_processed = t.processed }

let run_to_quiescence ?(max_events = 20_000_000) ?since t =
  let since = match since with Some m -> m | None -> mark t in
  let start_time = since.m_time in
  let start_messages = since.m_messages in
  let start_units = since.m_units in
  let start_delivered = since.m_delivered in
  let start_processed = since.m_processed in
  let budget = ref max_events in
  let rec loop () =
    match Heap.pop t.queue with
    | None -> ()
    | Some (time, event) ->
      if !budget = 0 then raise (Diverged t.processed);
      decr budget;
      t.clock <- time;
      t.processed <- t.processed + 1;
      (match event with
      | Deliver { src; dst; link_id; msg } ->
        (* Lost if the link died while the message was in flight. *)
        if Topology.is_up t.topo link_id then begin
          t.delivered <- t.delivered + 1;
          let actions =
            t.handlers.on_message ~now:t.clock ~node:dst ~src msg
          in
          perform t ~node:dst actions
        end
      | Link_notify { node; link_id } ->
        let actions =
          t.handlers.on_link_change ~now:t.clock ~node ~link_id
        in
        perform t ~node actions
      | Timer_fire { node; key } ->
        let actions = t.handlers.on_timer ~now:t.clock ~node ~key in
        perform t ~node actions);
      loop ()
  in
  loop ();
  Log.debug (fun m ->
      m "quiescent at t=%.3f: %d messages, %d events" t.clock
        (t.sent_messages - start_messages)
        (t.processed - start_processed));
  { duration = t.clock -. start_time;
    messages = t.sent_messages - start_messages;
    units = t.sent_units - start_units;
    deliveries = t.delivered - start_delivered;
    events = t.processed - start_processed }

let total_messages t = t.sent_messages

let total_units t = t.sent_units
