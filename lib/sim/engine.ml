let src = Logs.Src.create "sim.engine" ~doc:"discrete-event engine"

module Log = (val Logs.src_log src : Logs.LOG)

type 'msg action =
  | Send of int * 'msg
  | Timer of float * int

type 'msg handlers = {
  on_message : now:float -> node:int -> src:int -> 'msg -> 'msg action list;
  on_link_change : now:float -> node:int -> link_id:int -> 'msg action list;
  on_timer : now:float -> node:int -> key:int -> 'msg action list;
  on_batch_end : now:float -> node:int -> 'msg action list;
}

let no_timers ~now:_ ~node ~key =
  invalid_arg
    (Printf.sprintf "Engine.no_timers: node %d armed timer %d" node key)

let no_batching ~now:_ ~node:_ = []

type 'msg event =
  | Deliver of { src : int; dst : int; link_id : int; msg : 'msg }
  | Link_notify of { node : int; link_id : int }
  | Timer_fire of { node : int; key : int }

type 'msg t = {
  topo : Topology.t;
  units : 'msg -> int;
  handlers : 'msg handlers;
  queue : (float * 'msg event) Heap.t;
  loss : float array;  (* per-link delivery loss probability *)
  mutable loss_rng : Rng.t;
  mutable clock : float;
  mutable sent_messages : int;
  mutable sent_units : int;
  mutable delivered : int;
  mutable lost : int;
  mutable processed : int;
}

type run_stats = {
  duration : float;
  messages : int;
  units : int;
  deliveries : int;
  losses : int;
  events : int;
}

let create topo ~units ~handlers =
  let cmp (t1, _) (t2, _) = compare (t1 : float) t2 in
  { topo;
    units;
    handlers;
    queue = Heap.create ~cmp;
    loss = Array.make (Topology.num_links topo) 0.0;
    loss_rng = Rng.create 0;
    clock = 0.0;
    sent_messages = 0;
    sent_units = 0;
    delivered = 0;
    lost = 0;
    processed = 0 }

let topology t = t.topo

let now t = t.clock

let pending_events t = Heap.length t.queue

let set_loss t ~link_id ~rate =
  if link_id < 0 || link_id >= Array.length t.loss then
    invalid_arg (Printf.sprintf "Engine.set_loss: bad link id %d" link_id);
  if not (Float.is_finite rate) || rate < 0.0 || rate > 1.0 then
    invalid_arg (Printf.sprintf "Engine.set_loss: bad rate %g" rate);
  t.loss.(link_id) <- rate

let seed_loss t seed = t.loss_rng <- Rng.create seed

let perform t ~node actions =
  List.iter
    (fun action ->
      match action with
      | Send (dst, msg) -> (
        match Topology.link_between t.topo node dst with
        | None -> ()
        | Some link_id ->
          if Topology.is_up t.topo link_id then begin
            let delay = (Topology.link t.topo link_id).Topology.delay in
            t.sent_messages <- t.sent_messages + 1;
            t.sent_units <- t.sent_units + t.units msg;
            Heap.push t.queue
              (t.clock +. delay, Deliver { src = node; dst; link_id; msg })
          end)
      | Timer (delay, key) ->
        if delay < 0.0 then invalid_arg "Engine.perform: negative timer";
        Heap.push t.queue (t.clock +. delay, Timer_fire { node; key }))
    actions

let flip_link t ~link_id ~up =
  Log.debug (fun m ->
      m "t=%.3f link %d -> %s" t.clock link_id (if up then "up" else "down"));
  Topology.set_up t.topo link_id up;
  let link = Topology.link t.topo link_id in
  Heap.push t.queue (t.clock, Link_notify { node = link.Topology.a; link_id });
  Heap.push t.queue (t.clock, Link_notify { node = link.Topology.b; link_id })

exception Diverged of { processed : int; pending : int }

type mark = {
  m_time : float;
  m_messages : int;
  m_units : int;
  m_delivered : int;
  m_lost : int;
  m_processed : int;
}

let mark t =
  { m_time = t.clock;
    m_messages = t.sent_messages;
    m_units = t.sent_units;
    m_delivered = t.delivered;
    m_lost = t.lost;
    m_processed = t.processed }

(* Shared event loop. [until = Some h] stops before the first event
   scheduled after [h] and advances the clock to [h]; [None] drains the
   queue.

   Deliveries and link notifications hitting the {e same node at the same
   timestamp} form a batch: each event's handler runs as usual (absorb
   phase), and when no further same-(time, node) event is queued the
   node's [on_batch_end] runs once (recompute phase). Protocols built on
   the dirty-set scheduler defer their recomputation to the batch end, so
   one recompute amortizes a burst of simultaneous updates — a node
   crash's adjacent-link cut, an SRLG, or a fan-in of equal-delay
   floods. A batch closes before any other event is processed, so its
   emissions enter the queue in correct time order. *)
let run_core ~max_events ~since ~until t =
  let start_time = since.m_time in
  let budget = ref max_events in
  let horizon_allows time =
    match until with None -> true | Some h -> time <= h
  in
  (* Open batch: Some (time, node) after a handler ran for that node at
     that timestamp and its batch end is still pending. *)
  let open_batch = ref None in
  let close_batch () =
    match !open_batch with
    | None -> ()
    | Some (bt, bn) ->
      open_batch := None;
      perform t ~node:bn (t.handlers.on_batch_end ~now:bt ~node:bn)
  in
  let rec loop () =
    (* Close the open batch as soon as the next event cannot extend it
       (different node, different time, a timer, horizon, quiescence). *)
    (match !open_batch with
    | Some (bt, bn) ->
      let continues =
        match Heap.peek t.queue with
        | Some (time, Deliver { dst; _ }) ->
          time = bt && dst = bn && horizon_allows time
        | Some (time, Link_notify { node; _ }) ->
          time = bt && node = bn && horizon_allows time
        | Some (_, Timer_fire _) | None -> false
      in
      if not continues then close_batch ()
    | None -> ());
    match Heap.peek t.queue with
    | None -> ()
    | Some (time, _) when not (horizon_allows time) -> ()
    | Some _ ->
      let time, event = Heap.pop_exn t.queue in
      if !budget = 0 then
        raise
          (Diverged
             { processed = t.processed; pending = Heap.length t.queue + 1 });
      decr budget;
      t.clock <- time;
      t.processed <- t.processed + 1;
      (match event with
      | Deliver { src; dst; link_id; msg } ->
        (* Lost if the link died while the message was in flight, or to
           the link's probabilistic loss process. The loss draw happens
           only on links with a configured rate, so runs without a loss
           model never touch the RNG. *)
        if not (Topology.is_up t.topo link_id) then t.lost <- t.lost + 1
        else if
          t.loss.(link_id) > 0.0 && Rng.chance t.loss_rng t.loss.(link_id)
        then t.lost <- t.lost + 1
        else begin
          t.delivered <- t.delivered + 1;
          let actions =
            t.handlers.on_message ~now:t.clock ~node:dst ~src msg
          in
          open_batch := Some (time, dst);
          perform t ~node:dst actions
        end
      | Link_notify { node; link_id } ->
        let actions =
          t.handlers.on_link_change ~now:t.clock ~node ~link_id
        in
        open_batch := Some (time, node);
        perform t ~node actions
      | Timer_fire { node; key } ->
        let actions = t.handlers.on_timer ~now:t.clock ~node ~key in
        perform t ~node actions);
      loop ()
  in
  (* The top-of-loop check closes any open batch (and processes whatever
     its recompute emitted) before the loop can exit, so on return no
     batch is pending. *)
  loop ();
  (match until with
  | Some h -> if h > t.clock then t.clock <- h
  | None -> ());
  Log.debug (fun m ->
      m "%s at t=%.3f: %d messages, %d events"
        (match until with None -> "quiescent" | Some _ -> "paused")
        t.clock
        (t.sent_messages - since.m_messages)
        (t.processed - since.m_processed));
  { duration = t.clock -. start_time;
    messages = t.sent_messages - since.m_messages;
    units = t.sent_units - since.m_units;
    deliveries = t.delivered - since.m_delivered;
    losses = t.lost - since.m_lost;
    events = t.processed - since.m_processed }

let run_to_quiescence ?(max_events = 20_000_000) ?since t =
  let since = match since with Some m -> m | None -> mark t in
  run_core ~max_events ~since ~until:None t

let run_until ?(max_events = 20_000_000) ?since t horizon =
  let since = match since with Some m -> m | None -> mark t in
  run_core ~max_events ~since ~until:(Some horizon) t

let total_messages t = t.sent_messages

let total_units t = t.sent_units
