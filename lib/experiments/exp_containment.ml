(* Adversarial containment: seed a customer-route leak, a prefix hijack
   and a Permission-List misconfiguration into a converged caida-like
   inter-domain topology, and measure how far each lie travels under
   Centaur versus BGP. The protocols share one compiled default policy
   (byte-identical Gao–Rexford); the difference is structural — Centaur
   verifies every announced path against the Permission Lists built from
   the honest baseline, BGP trusts whatever its sessions report. The
   observer keeps judging forwarding against the honest ground truth
   (adversarial overrides do not change what routes *should* be). *)

let sample_every = 5.0

(* Centaur's cold start on the caida_like model is dominated by
   Permission-List construction and flooding, which grow superlinearly
   with node count (~17 s at 300 nodes, >5 min at 600 on one core). The
   containment story is about propagation *radius*, not absolute scale,
   so the experiment caps the topology; the quick preset already sits at
   the cap. *)
let max_nodes = 300

type kind = Route_leak | Prefix_hijack | Plist_misconfig

let kind_name = function
  | Route_leak -> "route-leak"
  | Prefix_hijack -> "prefix-hijack"
  | Plist_misconfig -> "plist-misconfig"

let all_kinds = [ Route_leak; Prefix_hijack; Plist_misconfig ]

type row = {
  kind : kind;
  protocol : string;
  radius : int;
      (* max hop distance from the adversary over nodes whose RIB the
         fault poisoned; 0 = fully contained *)
  poisoned : int;    (* (node, dest) selections poisoned mid-fault *)
  dark_pairs : int;  (* probed pairs blackholed/looped mid-fault *)
  detect_ms : float option;
      (* first sample at which the policy verifier had rejected at least
         one announcement; None = the protocol never noticed *)
  residual : int;    (* poisoned selections after heal + quiescence *)
  availability : float;
  unavailable_ms : float;
  messages : int;
}

type result = {
  nodes : int;
  pairs : int;
  horizon : float;
  rows : row list;  (* kind-major, centaur before bgp *)
}

let protocols = [ "centaur"; "bgp" ]

(* --- deterministic actor selection ----------------------------------- *)

let bfs_dist topo src =
  let dist = Array.make (Topology.num_nodes topo) (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Topology.iter_neighbors topo v (fun nb _ _ ->
        if dist.(nb) < 0 then begin
          dist.(nb) <- dist.(v) + 1;
          Queue.add nb q
        end)
  done;
  dist

(* The classic leaker: a multi-homed edge AS — lowest id with at least
   two providers, so the leak re-announces one provider's routes to the
   other (and to any peers). *)
let pick_leaker topo =
  let n = Topology.num_nodes topo in
  let providers v =
    Topology.fold_neighbors topo v ~init:0 ~f:(fun acc _ role _ ->
        if Relationship.equal role Relationship.Provider then acc + 1 else acc)
  in
  let rec go i = if i >= n || providers i >= 2 then min i (n - 1) else go (i + 1) in
  go 0

let max_degree_node topo =
  let best = ref 0 in
  for v = 1 to Topology.num_nodes topo - 1 do
    if Topology.full_degree topo v > Topology.full_degree topo !best then
      best := v
  done;
  !best

let farthest_from topo v =
  let dist = bfs_dist topo v in
  let best = ref v in
  Array.iteri (fun i d -> if d > dist.(!best) then best := i) dist;
  !best

(* Returns the scenario, the misbehaving node and (for hijacks) the
   victim whose prefix is claimed. *)
let scenario_of cfg topo kind =
  let horizon = cfg.Config.containment_horizon in
  (* Fault on at 12 ms (off the 5 ms sample grid, after a converged
     baseline sample), healed at 60% of the window so the tail observes
     recovery. *)
  let at = 12.0 in
  let duration = (0.6 *. horizon) -. at in
  let fault, bad, victim =
    match kind with
    | Route_leak ->
      let leaker = pick_leaker topo in
      (Faults.Scenario.Route_leak { node = leaker; at; duration }, leaker, None)
    | Prefix_hijack ->
      let victim = max_degree_node topo in
      let hijacker = farthest_from topo victim in
      ( Faults.Scenario.Prefix_hijack { node = hijacker; victim; at; duration },
        hijacker,
        Some victim )
    | Plist_misconfig ->
      let node = max_degree_node topo in
      (Faults.Scenario.Plist_misconfig { node; at; duration }, node, None)
  in
  ( { Faults.Scenario.name = kind_name kind;
      seed = cfg.Config.seed;
      horizon;
      sample_every;
      faults = [ fault ] },
    bad,
    victim )

(* --- one (scenario, protocol) run ------------------------------------ *)

let run_one cfg ~pairs (kind, proto) =
  let topo = Inputs.caida cfg in
  let policy = Policy.default () in
  let scenario, bad, victim = scenario_of cfg topo kind in
  let horizon = scenario.Faults.Scenario.horizon in
  let make = Option.get (Protocols.Proto_table.find proto) in
  let runner =
    make ~policy ~plist_fp_rate:cfg.Config.plist_fp_rate ~mrai:cfg.Config.mrai
      topo
  in
  (* Hijack damage is entirely about the victim's prefix: probe the
     sampled sources toward the victim instead of the generic pairs. *)
  let probe_pairs =
    match victim with
    | None -> pairs
    | Some v ->
      List.filter_map
        (fun s -> if s = v || s = bad then None else Some (s, v))
        (List.sort_uniq compare (List.map fst pairs))
  in
  let obs = Faults.Observer.create topo ~pairs:probe_pairs ~sample_every in
  let on_e, off_e =
    match Faults.Scenario.compile topo scenario with
    | [ on_e; off_e ] -> (on_e, off_e)
    | _ -> assert false (* one fault compiles to one on + one off edge *)
  in
  runner.Sim.Runner.seed_loss scenario.Faults.Scenario.seed;
  let total = ref (runner.Sim.Runner.cold_start ()) in
  Faults.Observer.refresh_truth obs;
  Policy.reset_rejects policy;
  let base = runner.Sim.Runner.now () in
  let step t =
    total :=
      Faults.Injector.add_stats !total
        (runner.Sim.Runner.run_until (base +. t))
  in
  let apply (e : Faults.Scenario.event) =
    match e.Faults.Scenario.change with
    | Faults.Scenario.Set_policy changes ->
      let nodes =
        List.sort_uniq compare
          (List.map (Faults.Injector.apply_policy_change policy) changes)
      in
      runner.Sim.Runner.on_policy_change nodes;
      if List.exists Faults.Scenario.policy_change_on changes then
        Faults.Observer.note_disruption obs runner
          ~now:e.Faults.Scenario.at
    | Faults.Scenario.Set_links _ | Faults.Scenario.Set_loss _ ->
      assert false (* the containment family is pure policy faults *)
  in
  (* RIB snapshots over the scan destinations: what each node would
     forward along (control-plane path), per destination. *)
  let scan_dests =
    Array.of_list
      (match victim with
      | Some v -> [ v ]
      | None -> List.sort_uniq compare (List.map snd probe_pairs))
  in
  let num_nodes = Topology.num_nodes topo in
  let snap () =
    Array.init num_nodes (fun src ->
        Array.map
          (fun dest ->
            if src = dest then None else runner.Sim.Runner.path ~src ~dest)
          scan_dests)
  in
  let pre = snap () in
  (* A selection is poisoned when it now traverses the adversary and its
     honest pre-fault selection did not (leak, hijack), or when a route
     the node had simply vanished (misconfig blackholes, no lie to
     trace). *)
  let is_poisoned now before =
    match (kind, now, before) with
    | Plist_misconfig, None, Some _ -> true
    | Plist_misconfig, _, _ -> false
    | _, Some p, before ->
      List.mem bad p
      && not (match before with Some q -> List.mem bad q | None -> false)
    | _, None, _ -> false
  in
  (* (poisoned selection count, nodes holding at least one) in one pass *)
  let scan_poisoned cur =
    let count = ref 0 and nodes = ref [] in
    Array.iteri
      (fun src row ->
        let here = ref false in
        Array.iteri
          (fun j now ->
            if is_poisoned now pre.(src).(j) then begin
              incr count;
              here := true
            end)
          row;
        if !here then nodes := src :: !nodes)
      cur;
    (!count, !nodes)
  in
  let detect = ref None in
  let next = ref 0.0 in
  let sample_to limit =
    while !next < limit && !next <= horizon do
      step !next;
      Faults.Observer.sample obs runner ~now:!next;
      if !detect = None && Policy.rejects policy > 0 then detect := Some !next;
      next := !next +. sample_every
    done
  in
  sample_to on_e.Faults.Scenario.at;
  step on_e.Faults.Scenario.at;
  apply on_e;
  sample_to off_e.Faults.Scenario.at;
  (* Mid-fault scan, the instant before the heal: how far did it get? *)
  step off_e.Faults.Scenario.at;
  let poisoned, radius =
    match scan_poisoned (snap ()) with
    | 0, _ -> (0, 0)
    | count, nodes ->
      let dist = bfs_dist topo bad in
      ( count,
        List.fold_left
          (fun acc v -> if dist.(v) > acc then dist.(v) else acc)
          0 nodes )
  in
  let dark_pairs =
    List.length
      (List.filter
         (fun (src, dest) ->
           match Faults.Observer.probe obs runner ~src ~dest with
           | Faults.Observer.Blackholed | Faults.Observer.Looped -> true
           | Faults.Observer.Delivered | Faults.Observer.Unroutable -> false)
         probe_pairs)
  in
  apply off_e;
  sample_to (horizon +. 1.0);
  total :=
    Faults.Injector.add_stats !total (runner.Sim.Runner.run_to_quiescence ());
  let residual = fst (scan_poisoned (snap ())) in
  let report =
    Faults.Observer.report obs ~protocol:proto ~stats:!total
  in
  { kind;
    protocol = proto;
    radius;
    poisoned;
    dark_pairs;
    detect_ms = !detect;
    residual;
    availability = report.Faults.Observer.availability;
    unavailable_ms = report.Faults.Observer.unavailable_ms;
    messages = report.Faults.Observer.stats.Sim.Engine.messages }

let kinds cfg =
  List.filteri (fun i _ -> i < cfg.Config.containment_scenarios) all_kinds

let run cfg =
  let cfg = { cfg with Config.as_nodes = min cfg.Config.as_nodes max_nodes } in
  let topo = Inputs.caida cfg in
  let pairs =
    Inputs.sample_pairs cfg topo ~count:cfg.Config.containment_pairs
  in
  let work =
    Array.of_list
      (List.concat_map
         (fun k -> List.map (fun p -> (k, p)) protocols)
         (kinds cfg))
  in
  (* Each work item owns private topology + policy instances, so the
     domain-pool fan-out is race-free and index-ordered collection keeps
     the result identical to a sequential sweep. *)
  let rows = Pool.parallel_map_array (run_one cfg ~pairs) work in
  { nodes = Topology.num_nodes topo;
    pairs = List.length pairs;
    horizon = cfg.Config.containment_horizon;
    rows = Array.to_list rows }

let find_row r kind proto =
  List.find_opt (fun x -> x.kind = kind && x.protocol = proto) r.rows

(* --- rendering ------------------------------------------------------- *)

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Containment of adversarial routing faults: caida_like n=%d, %d \
        probed pairs, %.0f ms window.\n\
        One compiled Gao-Rexford policy shared by both protocols; the \
        adversary overrides it mid-run.\n"
       r.nodes r.pairs r.horizon);
  Buffer.add_string buf
    "  scenario         protocol  radius  poisoned  dark  detect(ms)  \
     residual  avail%     msgs\n";
  List.iter
    (fun x ->
      Buffer.add_string buf
        (Printf.sprintf "  %-15s  %-8s  %6d  %8d  %4d  %10s  %8d  %6.2f  %7d\n"
           (kind_name x.kind) x.protocol x.radius x.poisoned x.dark_pairs
           (match x.detect_ms with
           | Some t -> Printf.sprintf "%.0f" t
           | None -> "-")
           x.residual
           (100.0 *. x.availability)
           x.messages))
    r.rows;
  (match (find_row r Route_leak "centaur", find_row r Route_leak "bgp") with
  | Some c, Some b ->
    Buffer.add_string buf
      (Printf.sprintf
         "  Route leak: BGP trusts the leaked customer-class routes and \
          carries them to radius %d\n  (%d poisoned selections); Centaur's \
          Permission-List check rejects them at the first\n  honest hop \
          (radius %d, verifier alarm at %s ms vs never for BGP).\n"
         b.radius b.poisoned c.radius
         (match c.detect_ms with
         | Some t -> Printf.sprintf "%.0f" t
         | None -> "-"))
  | _ -> ());
  (match (find_row r Prefix_hijack "centaur", find_row r Prefix_hijack "bgp") with
  | Some c, Some b ->
    Buffer.add_string buf
      (Printf.sprintf
         "  Prefix hijack: the forged origin blackholes %d/%d probed pairs \
          under BGP (radius %d);\n  Centaur contains it to radius %d with \
          %d dark pairs.\n"
         b.dark_pairs r.pairs b.radius c.radius c.dark_pairs)
  | _ -> ());
  (match find_row r Plist_misconfig "centaur" with
  | Some c ->
    Buffer.add_string buf
      (Printf.sprintf
         "  Permission-List misconfig is Centaur's own failure mode: %d \
          selections blackholed\n  at radius %d (BGP has no Permission \
          Lists to corrupt). The verifier stays silent —\n  a \
          misconfiguration is indistinguishable from a withdrawal — and \
          repair leaves %d residual.\n"
         c.poisoned c.radius c.residual)
  | None -> ());
  Buffer.contents buf
