type series = {
  topology : string;
  prefixes_per_as : float;
  bgp : float array;
  centaur : float array;
  mean_ratio : float;
}

type result = series list

let series_of cfg name topo ~prefixes =
  let dests =
    if cfg.Config.fig5_dests <= 0 then None
    else begin
      let rng = Rng.create (cfg.Config.seed + 77) in
      let nodes = Array.init (Topology.num_nodes topo) (fun i -> i) in
      Some (Array.to_list (Rng.sample rng cfg.Config.fig5_dests nodes))
    end
  in
  let overheads = Centaur.Static.immediate_overhead ?dests ?prefixes topo in
  let bgp =
    Array.map
      (fun o -> float_of_int o.Centaur.Static.bgp_units)
      overheads
  in
  let centaur =
    Array.map
      (fun o -> float_of_int o.Centaur.Static.centaur_units)
      overheads
  in
  let mean_ratio =
    let mb = Stats.mean bgp and mc = Stats.mean centaur in
    if mc > 0.0 then mb /. mc else infinity
  in
  { topology = name;
    prefixes_per_as =
      (match prefixes with None -> 1.0 | Some t -> Prefix.mean t);
    bgp;
    centaur;
    mean_ratio }

let run cfg =
  let with_tables name topo =
    let table =
      Prefix.generate
        (Rng.create (cfg.Config.seed + 99))
        ~n:(Topology.num_nodes topo) ~mean:10.0
    in
    [ series_of cfg name topo ~prefixes:None;
      series_of cfg name topo ~prefixes:(Some table) ]
  in
  with_tables "caida-like" (Inputs.caida cfg)
  @ with_tables "hetop-like" (Inputs.hetop cfg)

let render result =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 5. Immediate overhead of a single link failure (all links).\n";
  Buffer.add_string buf
    "  topology    pfx/AS  protocol     mean      p50      p90       max\n";
  List.iter
    (fun s ->
      let line proto (xs : float array) =
        let _, hi = Stats.min_max xs in
        Buffer.add_string buf
          (Printf.sprintf "  %-11s %5.1f  %-8s %8.1f %8.1f %8.1f %9.1f\n"
             s.topology s.prefixes_per_as proto (Stats.mean xs)
             (Stats.percentile xs 50.0) (Stats.percentile xs 90.0) hi)
      in
      line "BGP" s.bgp;
      line "Centaur" s.centaur;
      Buffer.add_string buf
        (Printf.sprintf "  %-11s %5.1f  mean ratio BGP/Centaur: %.0fx\n"
           s.topology s.prefixes_per_as s.mean_ratio))
    result;
  Buffer.add_string buf
    "  (paper: Centaur incurs roughly 100-1000x fewer update messages;\n";
  Buffer.add_string buf
    "   the ratio grows with topology size and with prefixes per AS -\n";
  Buffer.add_string buf
    "   BGP withdraws per prefix, Centaur per link, cf. paper section 6.4)\n";
  Buffer.contents buf
