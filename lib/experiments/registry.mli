(** Uniform access to every reproduced table and figure.

    Each entry regenerates one artifact of the paper's evaluation and
    renders it as text in the paper's layout. The CLI ([bin/main.exe exp
    <id>]) and the bench harness both drive this registry. *)

type entry = {
  id : string;        (** "table3" … "fig8" *)
  title : string;
  run : Config.t -> string;  (** regenerate and render *)
}

val all : entry list

val find : string -> entry option

val ids : string list
