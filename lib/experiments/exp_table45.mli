(** Tables 4 and 5 — structural characteristics of P-graphs.

    The §5.2 pipeline: derive every node's complete path set to all other
    nodes under the standard business relationships, build its local
    P-graph, and measure (Table 4) the average number of links and
    Permission Lists per P-graph and (Table 5) the distribution of
    entries per Permission List. P-graph roots are sampled
    ([as_sources]); averages and distributions are per-root, so sampling
    estimates the paper's full sweep without bias.

    The experiment doubles as the ranking-discipline ablation called out
    in DESIGN.md. The paper does not pin down its tie-breaking, and the
    result depends on it strongly:

    - [standard] (shortest-within-class, globally consistent ties) and
      the [class-only] / [diverse] variants canalize routes onto shared
      gradients — P-graphs degenerate to trees and Permission Lists all
      but vanish;
    - [arbitrary] (per-(node, destination) ties — deployed BGP's
      oldest-route/router-id behaviour) makes same-class routes diverge
      and re-merge, reproducing the paper's bushy P-graphs;
    - [vf-shortest] is the per-pair shortest valley-free path set (no
      BGP selection at all), an independent data point. *)

type row = {
  discipline : string;
  caida : Centaur.Static.pgraph_stats;
  hetop : Centaur.Static.pgraph_stats;
}

type result = row list

val run : Config.t -> result

val render_table4 : result -> string

val render_table5 : result -> string
