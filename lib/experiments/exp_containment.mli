(** Adversarial containment: route-leak / prefix-hijack /
    Permission-List-misconfiguration scenarios, Centaur vs BGP.

    Both protocols run the same compiled default Gao–Rexford policy on
    the same caida-like topology (capped at {!max_nodes} — Centaur's
    Permission-List cold start grows superlinearly, and the containment
    story is about propagation radius, not absolute scale). Mid-run, one
    node's policy overrides flip on ({!Faults.Scenario} adversarial
    faults) and later heal; the experiment records how many RIB
    selections the lie poisoned, how far from the adversary the damage
    travelled (BFS hop radius), how many probed pairs went dark, whether
    the policy verifier raised an alarm, and whether any damage survived
    the repair. *)

type kind = Route_leak | Prefix_hijack | Plist_misconfig

val kind_name : kind -> string

val max_nodes : int
(** Topology cap applied to [as_nodes] for this experiment. *)

type row = {
  kind : kind;
  protocol : string;
  radius : int;          (** max adversary→poisoned-node hop distance; 0 = contained *)
  poisoned : int;        (** (node, dest) selections poisoned mid-fault *)
  dark_pairs : int;      (** probed pairs blackholed/looped mid-fault *)
  detect_ms : float option;
      (** first sample with verifier rejects > 0; [None] = never noticed *)
  residual : int;        (** poisoned selections after heal + quiescence *)
  availability : float;
  unavailable_ms : float;
  messages : int;
}

type result = {
  nodes : int;
  pairs : int;
  horizon : float;
  rows : row list;  (** kind-major, centaur before bgp *)
}

val run : Config.t -> result
(** Deterministic: equal configs give equal results; the work items fan
    out over the domain pool with index-ordered collection, so the
    result is independent of [CENTAUR_DOMAINS]. *)

val find_row : result -> kind -> string -> row option

val render : result -> string
