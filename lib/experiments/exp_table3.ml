type row = {
  name : string;
  nodes : int;
  links : int;
  peering : int;
  provider : int;
  sibling : int;
}

type result = row list

let row_of_topology name topo =
  let c = Topology.relationship_counts topo in
  { name;
    nodes = Topology.num_nodes topo;
    links = Topology.num_links topo;
    peering = c.Topology.peering;
    provider = c.Topology.provider_customer;
    sibling = c.Topology.sibling }

let run cfg =
  [ row_of_topology "caida-like" (Inputs.caida cfg);
    row_of_topology "hetop-like" (Inputs.hetop cfg) ]

let render rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Table 3. Characteristics of input topologies.\n";
  Buffer.add_string buf
    "  Name        | Node/Link     | Peering/Provider/Sibling | fractions\n";
  List.iter
    (fun r ->
      let total = float_of_int r.links in
      Buffer.add_string buf
        (Printf.sprintf
           "  %-11s | %6d/%-6d | %6d/%6d/%4d        | %.3f/%.3f/%.4f\n"
           r.name r.nodes r.links r.peering r.provider r.sibling
           (float_of_int r.peering /. total)
           (float_of_int r.provider /. total)
           (float_of_int r.sibling /. total)))
    rows;
  Buffer.add_string buf
    "  (paper: CAIDA 26022/52691, 4002/48457/232 = 0.076/0.920/0.0044;\n";
  Buffer.add_string buf
    "          HeTop 19940/59508, 20983/38265/260 = 0.353/0.643/0.0044)\n";
  Buffer.contents buf
