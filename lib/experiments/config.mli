(** Shared experiment configuration.

    Every experiment takes one of these; the defaults are sized so the
    full suite regenerates on a laptop in minutes while preserving the
    paper's shapes. The paper's original scales (26k/20k-node measured AS
    graphs, full link sweeps) remain reachable by raising the fields. *)

type t = {
  seed : int;           (** master PRNG seed; everything derives from it *)
  as_nodes : int;       (** size of the synthetic AS topologies (T3–T5, F5) *)
  as_sources : int;     (** sampled P-graph roots for T4/T5 *)
  brite_nodes : int;    (** prototype topology size (F6/F7; paper: 500) *)
  brite_m : int;        (** BRITE BA attachment degree *)
  flips : int;          (** links flipped for F6/F7 *)
  fig5_dests : int;     (** sampled destinations for F5 (0 = all) *)
  fig8_sizes : int list;  (** topology sizes swept in F8 *)
  fig8_events : int;    (** link events measured per size in F8 *)
  mrai : float;         (** BGP MRAI in ms *)
  plist_fp_rate : float;
      (** Bloom false-positive rate the on-wire Permission Lists are
          sized for (paper §4.1; default 0.01) — scales byte accounting
          in the static analysis and the Centaur net *)
  resilience_scenarios : int;  (** churn scenarios swept by [exp resilience] *)
  resilience_pairs : int;      (** (src, dest) pairs probed per scenario *)
  resilience_flaps : int;      (** link flaps per churn scenario *)
  resilience_horizon : float;  (** observed window per scenario, ms *)
  containment_scenarios : int;
      (** adversarial scenarios run by [exp containment] (route leak,
          prefix hijack, Permission-List misconfiguration — in that
          order, capped at 3) *)
  containment_pairs : int;     (** (src, dest) pairs probed per scenario *)
  containment_horizon : float; (** observed window per scenario, ms *)
  scale_sizes : int list;
      (** topology sizes swept by [exp scale] (default runs to the
          paper's 26k-node CAIDA scale) *)
  scale_sources : int;  (** sampled P-graph roots per size point *)
  scale_dests : int;    (** sampled destinations for the failure sweep *)
  churn_rates : float list;
      (** offered loads swept by [exp churnrate], stream arrivals/ms *)
  churn_duration : float;  (** stream arrival window per replay, ms *)
  churn_window : float;    (** delta-wave batching window, ms *)
  convergence_samples : int;
      (** random policy configurations per corpus (safe / unsafe) in
          [exp convergence] *)
  convergence_nodes : int;
      (** caida-like topology size for the [exp convergence] corpora *)
  emit_metrics : bool;
      (** append the merged metrics registry to experiment output
          (default false — keeps default output byte-stable) *)
  trace_digest : string option;
      (** when set, instrumented experiments ([exp resilience]) run with
          tracing enabled and write per-run normalized trace digests to
          this file — the CI determinism gate diffs two such files *)
}

val default : t

val quick : t
(** Small configuration for smoke tests and CI. *)

val pp : Format.formatter -> t -> unit
