(** [exp convergence]: the lib/verify analyzer's verdicts on random
    policy corpora (safe and unsafe generator modes) and the classic
    oscillation gadgets, cross-checked against bounded cold starts of
    the three policy-aware protocols and the sequential stable solver.

    The rendered table is deterministic for a given configuration seed
    (CI reruns it and diffs). Its contract mirrors the QCheck harness:
    certified rows never show a diverged run; every classic gadget is
    flagged with a concrete dispute wheel. *)

type result

val run : Config.t -> result

val render : result -> string
