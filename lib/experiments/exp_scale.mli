(** Size-scaling harness: the analysis pipeline at increasing topology
    size, up to the paper's 26k-node CAIDA scale.

    Each size point regenerates a synthetic CAIDA-like topology, runs the
    streamed {!Centaur.Static.analyze} over sampled sources and an
    immediate-overhead failure sweep over sampled destinations, and
    records wall time, minor-heap allocation, and the process peak RSS
    ([VmHWM]). The statistics are deterministic in the seed; the
    timing/memory columns are not, and render separately so CI can diff
    the deterministic part across domain counts. *)

type point = {
  nodes : int;
  links : int;
  sources : int;          (** sampled P-graph roots actually analyzed *)
  sweep_dests : int;      (** sampled destinations in the failure sweep *)
  stats : Centaur.Static.pgraph_stats;
  bgp_units : int;        (** total immediate BGP withdrawals, all links *)
  centaur_units : int;    (** total immediate Centaur withdrawals *)
  gen_ns : int;           (** topology generation wall time *)
  analyze_ns : int;       (** streamed analyze wall time *)
  sweep_ns : int;         (** failure-sweep wall time *)
  minor_words : float;    (** minor-heap words allocated by analyze *)
  major_words : float;    (** major-heap words allocated by analyze *)
  peak_rss_kb : int;      (** process VmHWM after this point (monotone) *)
}

type result = point list

val xl_size : int
(** The opt-in extra-large point: 100_000 nodes. *)

val effective_scale_sizes : Config.t -> int list
(** [Config.scale_sizes], with {!xl_size} appended when the
    [CENTAUR_SCALE_XL=1] environment variable opts into the 100k-node
    point (minutes of wall time and gigabytes of RSS — never implicit). *)

val run : Config.t -> result
(** One point per {!effective_scale_sizes} entry, in order. *)

val run_point : Config.t -> n:int -> point
(** A single size point (the CI gate runs these one size at a time). *)

val render : result -> string
(** Deterministic statistics table — byte-stable across runs, domain
    counts, and machines for a fixed seed. *)

val render_timing : result -> string
(** Environment-dependent columns: wall times, allocation, peak RSS. *)
