(** Size-scaling harness: the analysis pipeline at increasing topology
    size, up to the paper's 26k-node CAIDA scale.

    Each size point regenerates a synthetic CAIDA-like topology, runs the
    streamed {!Centaur.Static.analyze} over sampled sources and an
    immediate-overhead failure sweep over sampled destinations, and
    records wall time, minor-heap allocation, and the process peak RSS
    ([VmHWM]). The statistics are deterministic in the seed; the
    timing/memory columns are not, and render separately so CI can diff
    the deterministic part across domain counts. *)

type point = {
  nodes : int;
  links : int;
  sources : int;          (** sampled P-graph roots actually analyzed *)
  sweep_dests : int;      (** sampled destinations in the failure sweep *)
  stats : Centaur.Static.pgraph_stats;
  bgp_units : int;        (** total immediate BGP withdrawals, all links *)
  centaur_units : int;    (** total immediate Centaur withdrawals *)
  gen_ns : int;           (** topology generation wall time *)
  analyze_ns : int;       (** streamed analyze wall time *)
  sweep_ns : int;         (** failure-sweep wall time *)
  minor_words : float;    (** minor-heap words allocated by analyze *)
  peak_rss_kb : int;      (** process VmHWM after this point (monotone) *)
}

type result = point list

val run : Config.t -> result
(** One point per [Config.scale_sizes] entry, in order. *)

val run_point : Config.t -> n:int -> point
(** A single size point (the CI gate runs these one size at a time). *)

val render : result -> string
(** Deterministic statistics table — byte-stable across runs, domain
    counts, and machines for a fixed seed. *)

val render_timing : result -> string
(** Environment-dependent columns: wall times, allocation, peak RSS. *)
