(* Convergence-safety corpus: run the lib/verify analyzer over random
   policy corpora and the classic oscillation gadgets, then cross-check
   every verdict against bounded engine runs of the three policy-aware
   protocols and the sequential stable solver. The table this renders is
   the empirical face of the harness's two soundness properties: no
   certified configuration may ever land in a `diverged` cell, and every
   classic gadget must be flagged with a concrete dispute wheel. *)

let protocols = [ "centaur"; "bgp"; "bgp-rcn" ]

(* Event budget for the bounded cold starts. The corpus topologies
   quiesce within a few hundred events when they quiesce at all, so the
   budget only has to be comfortably above that — it is the divergence
   detector, not a tuning knob. *)
let event_budget = 20_000

type outcome = Quiesced of int (* events *) | Diverged

type verdict_class = Certified | Flagged | Inconclusive

let verdict_class_of = function
  | Verify.Dispute.Certified _ -> Certified
  | Verify.Dispute.Wheel _ -> Flagged
  | Verify.Dispute.Inconclusive _ -> Inconclusive

let class_name = function
  | Certified -> "certified"
  | Flagged -> "flagged"
  | Inconclusive -> "inconclusive"

let verdict_summary = function
  | Verify.Dispute.Certified Verify.Dispute.Gao_rexford_structure ->
    "certified (structure)"
  | Verify.Dispute.Certified (Verify.Dispute.Strict_monotonicity _) ->
    "certified (monotone)"
  | Verify.Dispute.Wheel w ->
    Printf.sprintf "wheel (%d hubs, dest %d)"
      (List.length w.Verify.Dispute.hubs)
      w.Verify.Dispute.dest
  | Verify.Dispute.Inconclusive _ -> "inconclusive"

type sample = {
  verdict : verdict_class;
  outcomes : (string * outcome) list;  (* per protocol, in order *)
  stable_diverged : bool;  (* any dest where Stable raises Diverged *)
}

type corpus = {
  label : string;
  samples : sample list;
}

type gadget_row = {
  g_name : string;
  g_summary : string;
  g_outcomes : (string * outcome) list;
  g_stable_diverged : bool;
}

type result = {
  nodes : int;
  per_corpus : int;
  corpora : corpus list;
  gadgets : gadget_row list;
}

let run_engine topo policy name =
  match Protocols.Proto_table.find name with
  | None -> invalid_arg ("exp_convergence: unknown protocol " ^ name)
  | Some network -> (
    let runner = network ~policy topo in
    match runner.Sim.Runner.cold_start ~max_events:event_budget () with
    | stats -> Quiesced stats.Sim.Engine.events
    | exception Sim.Engine.Diverged _ -> Diverged)

let run_stable topo policy =
  let ws = Stable.create_workspace () in
  let n = Topology.num_nodes topo in
  let diverged = ref false in
  for dest = 0 to n - 1 do
    if not !diverged then
      match Stable.to_dest_with ws topo dest ~policy with
      | (_ : Stable.routes) -> ()
      | exception Stable.Diverged -> diverged := true
  done;
  !diverged

let run_sample topo policy verdict =
  { verdict = verdict_class_of verdict;
    outcomes = List.map (fun p -> (p, run_engine topo policy p)) protocols;
    stable_diverged = run_stable topo policy }

let run_corpus cfg ~label ~safe ~nodes ~count =
  let samples =
    List.init count (fun i ->
        (* One private stream per sample: corpus membership of sample i
           never depends on how many samples precede it. *)
        let rng =
          Rng.create
            (cfg.Config.seed + (7919 * i) + if safe then 0 else 104729)
        in
        let topo = As_gen.generate rng (As_gen.caida_like ~n:nodes) in
        let config = Verify.Gadgets.random_config rng topo ~safe in
        match Policy.compile ~num_nodes:nodes config with
        | Error msg -> invalid_arg ("exp_convergence: " ^ msg)
        | Ok policy ->
          let verdict = Verify.Dispute.analyze ~policy topo in
          run_sample topo policy verdict)
  in
  { label; samples }

let run_gadget (g : Verify.Gadgets.gadget) =
  let n = Topology.num_nodes g.Verify.Gadgets.topo in
  match Policy.compile ~num_nodes:n g.Verify.Gadgets.config with
  | Error msg -> invalid_arg ("exp_convergence: " ^ msg)
  | Ok policy ->
    let verdict = Verify.Dispute.analyze ~policy g.Verify.Gadgets.topo in
    { g_name = g.Verify.Gadgets.name;
      g_summary = verdict_summary verdict;
      g_outcomes =
        List.map
          (fun p -> (p, run_engine g.Verify.Gadgets.topo policy p))
          protocols;
      g_stable_diverged = run_stable g.Verify.Gadgets.topo policy }

let run (cfg : Config.t) =
  let nodes = cfg.Config.convergence_nodes in
  let per_corpus = cfg.Config.convergence_samples in
  { nodes;
    per_corpus;
    corpora =
      [ run_corpus cfg ~label:"safe" ~safe:true ~nodes ~count:per_corpus;
        run_corpus cfg ~label:"unsafe" ~safe:false ~nodes ~count:per_corpus ];
    gadgets = List.map run_gadget (Verify.Gadgets.all ()) }

(* --- rendering -------------------------------------------------------- *)

let count_class c samples =
  List.length (List.filter (fun s -> s.verdict = c) samples)

let render r =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "analyzer verdicts on random policy corpora (%d samples each, \
        %d-node caida-like topologies):\n"
       r.per_corpus r.nodes);
  Buffer.add_string b
    (Printf.sprintf "%-8s %9s %9s %12s\n" "corpus" "certified" "flagged"
       "inconclusive");
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "%-8s %9d %9d %12d\n" c.label
           (count_class Certified c.samples)
           (count_class Flagged c.samples)
           (count_class Inconclusive c.samples)))
    r.corpora;
  Buffer.add_string b
    (Printf.sprintf
       "\nbounded engine outcomes by verdict (event budget %d):\n"
       event_budget);
  Buffer.add_string b
    (Printf.sprintf "%-8s %-10s %-12s %5s %9s %9s %15s\n" "corpus"
       "protocol" "verdict" "runs" "quiesced" "diverged" "stable-diverged");
  List.iter
    (fun c ->
      List.iter
        (fun proto ->
          List.iter
            (fun cls ->
              let picked =
                List.filter (fun s -> s.verdict = cls) c.samples
              in
              if picked <> [] then begin
                let outcome s = List.assoc proto s.outcomes in
                let quiesced =
                  List.length
                    (List.filter
                       (fun s ->
                         match outcome s with
                         | Quiesced _ -> true
                         | Diverged -> false)
                       picked)
                in
                let stable_div =
                  List.length
                    (List.filter (fun s -> s.stable_diverged) picked)
                in
                Buffer.add_string b
                  (Printf.sprintf "%-8s %-10s %-12s %5d %9d %9d %15d\n"
                     c.label proto (class_name cls) (List.length picked)
                     quiesced
                     (List.length picked - quiesced)
                     stable_div)
              end)
            [ Certified; Flagged; Inconclusive ])
        protocols)
    r.corpora;
  Buffer.add_string b "\nclassic gadgets:\n";
  Buffer.add_string b
    (Printf.sprintf "%-12s %-24s %-10s %-10s %-10s %s\n" "gadget" "verdict"
       "centaur" "bgp" "bgp-rcn" "stable");
  List.iter
    (fun g ->
      let cell p =
        match List.assoc p g.g_outcomes with
        | Quiesced ev -> Printf.sprintf "ok/%d" ev
        | Diverged -> "diverged"
      in
      Buffer.add_string b
        (Printf.sprintf "%-12s %-24s %-10s %-10s %-10s %s\n" g.g_name
           g.g_summary (cell "centaur") (cell "bgp") (cell "bgp-rcn")
           (if g.g_stable_diverged then "diverged" else "ok")))
    r.gadgets;
  Buffer.contents b
