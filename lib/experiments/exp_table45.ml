type row = {
  discipline : string;
  caida : Centaur.Static.pgraph_stats;
  hetop : Centaur.Static.pgraph_stats;
}

type result = row list

let run cfg =
  let fp = cfg.Config.plist_fp_rate in
  let both analyze =
    let run_on topo = analyze topo ~sources:(Inputs.sample_sources cfg topo) in
    (run_on (Inputs.caida cfg), run_on (Inputs.hetop cfg))
  in
  let discipline_row name discipline =
    let caida, hetop =
      both (fun topo ->
          Centaur.Static.analyze ~discipline ~plist_fp_rate:fp topo)
    in
    { discipline = name; caida; hetop }
  in
  let vf_row =
    let caida, hetop = both (Centaur.Static.analyze_vf ~plist_fp_rate:fp) in
    { discipline = "vf-shortest"; caida; hetop }
  in
  [ discipline_row "standard" Gao_rexford.Standard;
    discipline_row "arbitrary" Gao_rexford.Arbitrary;
    discipline_row "class-only" Gao_rexford.Class_only;
    discipline_row "diverse" Gao_rexford.Diverse;
    vf_row ]

let render_table4 rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 4. Structural characteristics of P-graphs (per-root averages).\n";
  Buffer.add_string buf
    "  discipline    topology     links  permission-lists  avg PL bytes\n";
  List.iter
    (fun r ->
      let line topo_name (s : Centaur.Static.pgraph_stats) =
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %-11s %8.1f %12.1f %12.1fB\n" r.discipline
             topo_name s.Centaur.Static.avg_links s.Centaur.Static.avg_plists
             s.Centaur.Static.avg_plist_compressed_bytes)
      in
      line "caida-like" r.caida;
      line "hetop-like" r.hetop)
    rows;
  Buffer.add_string buf
    "  (paper, 26k/20k nodes: links 40339/32006 = 1.55/1.61 per dest;\n";
  Buffer.add_string buf
    "   Permission Lists 14437/12219 = 0.55/0.61 per dest. Only the\n";
  Buffer.add_string buf
    "   'arbitrary' tie-break discipline — deployed BGP's effective\n";
  Buffer.add_string buf
    "   behaviour — produces this bushiness; see EXPERIMENTS.md.)\n";
  Buffer.contents buf

let dist_fractions (d : Centaur.Static.entry_distribution) =
  let total = d.Centaur.Static.one + d.Centaur.Static.two
              + d.Centaur.Static.three + d.Centaur.Static.more
  in
  if total = 0 then (0.0, 0.0, 0.0, 0.0)
  else
    let f x = 100.0 *. float_of_int x /. float_of_int total in
    ( f d.Centaur.Static.one,
      f d.Centaur.Static.two,
      f d.Centaur.Static.three,
      f d.Centaur.Static.more )

let render_table5 rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 5. Distribution of the number of entries in one Permission List.\n";
  Buffer.add_string buf
    "  discipline    topology    #entries=1  #entries=2  #entries=3  #entries>3\n";
  List.iter
    (fun r ->
      let line topo_name (s : Centaur.Static.pgraph_stats) =
        let e1, e2, e3, e4 = dist_fractions s.Centaur.Static.entry_dist in
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %-11s %9.1f%% %10.1f%% %10.1f%% %10.1f%%\n"
             r.discipline topo_name e1 e2 e3 e4)
      in
      line "caida-like" r.caida;
      line "hetop-like" r.hetop)
    rows;
  Buffer.add_string buf
    "  (paper: CAIDA 0.7/91.9/7.0/0.6%%; HeTop 0.7/92.9/6.4/0.1%% —\n";
  Buffer.add_string buf
    "   small entry counts dominate in every discipline; the exact\n";
  Buffer.add_string buf
    "   bucket shares depend on the tie-break, see EXPERIMENTS.md)\n";
  Buffer.contents buf
