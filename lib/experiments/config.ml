type t = {
  seed : int;
  as_nodes : int;
  as_sources : int;
  brite_nodes : int;
  brite_m : int;
  flips : int;
  fig5_dests : int;
  fig8_sizes : int list;
  fig8_events : int;
  mrai : float;
  plist_fp_rate : float;
  resilience_scenarios : int;
  resilience_pairs : int;
  resilience_flaps : int;
  resilience_horizon : float;
  containment_scenarios : int;
  containment_pairs : int;
  containment_horizon : float;
  scale_sizes : int list;
  scale_sources : int;
  scale_dests : int;
  churn_rates : float list;
  churn_duration : float;
  churn_window : float;
  convergence_samples : int;
  convergence_nodes : int;
  emit_metrics : bool;
  trace_digest : string option;
}

let default =
  { seed = 42;
    as_nodes = 2000;
    as_sources = 60;
    brite_nodes = 500;
    brite_m = 2;
    flips = 40;
    fig5_dests = 0;
    fig8_sizes = [ 50; 100; 200; 400; 800 ];
    fig8_events = 12;
    mrai = 30.0;
    plist_fp_rate = 0.01;
    resilience_scenarios = 8;
    resilience_pairs = 40;
    resilience_flaps = 6;
    resilience_horizon = 400.0;
    containment_scenarios = 3;
    containment_pairs = 40;
    containment_horizon = 400.0;
    scale_sizes = [ 300; 1000; 5000; 26000 ];
    scale_sources = 40;
    scale_dests = 300;
    churn_rates = [ 0.2; 0.5; 1.0 ];
    churn_duration = 300.0;
    churn_window = 8.0;
    convergence_samples = 30;
    convergence_nodes = 24;
    emit_metrics = false;
    trace_digest = None }

let quick =
  { seed = 42;
    as_nodes = 300;
    as_sources = 20;
    brite_nodes = 80;
    brite_m = 2;
    flips = 10;
    fig5_dests = 0;
    fig8_sizes = [ 30; 60; 120 ];
    fig8_events = 6;
    mrai = 30.0;
    plist_fp_rate = 0.01;
    resilience_scenarios = 3;
    resilience_pairs = 12;
    resilience_flaps = 4;
    resilience_horizon = 250.0;
    containment_scenarios = 3;
    containment_pairs = 12;
    containment_horizon = 250.0;
    scale_sizes = [ 300; 1000 ];
    scale_sources = 20;
    scale_dests = 100;
    churn_rates = [ 1.0; 4.0 ];
    churn_duration = 150.0;
    churn_window = 20.0;
    convergence_samples = 12;
    convergence_nodes = 16;
    emit_metrics = false;
    trace_digest = None }

let pp fmt t =
  Format.fprintf fmt
    "seed=%d as_nodes=%d as_sources=%d brite=%d(m=%d) flips=%d mrai=%.1fms"
    t.seed t.as_nodes t.as_sources t.brite_nodes t.brite_m t.flips t.mrai
