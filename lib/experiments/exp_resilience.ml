(* The reliability experiment the paper's Figures 1/2 motivate but its
   evaluation never runs: observe the data plane *while* the protocols
   converge under churn. Each scenario is a seeded schedule of link
   flaps, one node outage, one SRLG cut and a lossy-link window; the
   observer probes sampled (src, dest) pairs every few milliseconds and
   charges blackhole/loop time to whichever protocol exhibits it. *)

let sample_every = 5.0

type agg = {
  protocol : string;
  availability : float;
  blackhole_ms : float;
  loop_ms : float;
  unavailable_ms : float;
  unroutable_ms : float;
  pair_unavail : float array;   (* per (scenario, pair), for the CDF *)
  recovery : float array;       (* per disruption *)
  ttfc : float array;           (* per (pair, disruption) *)
  messages : int;
  losses : int;
}

type result = {
  scenarios : int;
  pairs : int;
  horizon : float;
  rows : agg list;  (* centaur, bgp, ospf — fixed order *)
  digests : (string * string array) list;
      (* protocol -> per-scenario trace digest (MD5 of the normalized
         digest text); [] unless the config asks for trace digests *)
  registries : (string * Obs.Metrics.t) list;
      (* protocol -> merged per-run metrics; [] unless emit_metrics *)
}

(* Constructors come from the shared table; the per-protocol defaults
   (Permission-List sizing, policy) match what direct construction used,
   so the committed resilience baseline is unchanged. *)
let protocol_makers cfg =
  List.map
    (fun name ->
      let make = Option.get (Protocols.Proto_table.find name) in
      ( name,
        fun ~trace topo ->
          make ~trace ~plist_fp_rate:cfg.Config.plist_fp_rate
            ~mrai:cfg.Config.mrai topo ))
    [ "centaur"; "bgp"; "ospf" ]

(* Traced runs keep the last ~1M events; a truncated ring still digests
   deterministically (the dropped count is part of the digest), so the
   determinism gate holds at any scenario size. *)
let trace_capacity = 1 lsl 20

let scenario_for cfg i topo =
  Faults.Scenario.random_churn
    ~seed:((cfg.Config.seed * 1_000_003) + 7_000 + i)
    ~horizon:cfg.Config.resilience_horizon ~sample_every
    ~flaps:cfg.Config.resilience_flaps topo

(* One work item: a full scenario against every protocol, on private
   topology instances (the engines mutate link state). Fanned out over
   the domain pool; collection by index keeps the aggregate identical
   to a sequential sweep. *)
let run_scenario cfg ~pairs i =
  let traced = cfg.Config.trace_digest <> None in
  let scenario = scenario_for cfg i (Inputs.brite cfg) in
  List.map
    (fun (_, make) ->
      let topo = Inputs.brite cfg in
      let trace =
        if traced then Obs.Trace.create ~capacity:trace_capacity ()
        else Obs.Trace.none
      in
      let metrics =
        if cfg.Config.emit_metrics then Some (Obs.Metrics.create ()) else None
      in
      let runner = make ~trace topo in
      let report = Faults.Injector.run ?metrics runner ~topo ~scenario ~pairs in
      let digest =
        if traced then Some (Digest.to_hex (Digest.string (Obs.Trace.digest trace)))
        else None
      in
      (report, digest, metrics))
    (protocol_makers cfg)

let aggregate name (reports : Faults.Observer.report list) =
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 reports in
  let sumi f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let concat f = Array.concat (List.map f reports) in
  let avail =
    (* Scenarios share horizon and sampling period, so the sample-count
       weighted mean of per-scenario availabilities is the right pool. *)
    let num =
      sum (fun r ->
          r.Faults.Observer.availability
          *. float_of_int r.Faults.Observer.samples)
    and den = sum (fun r -> float_of_int r.Faults.Observer.samples) in
    if den = 0.0 then 1.0 else num /. den
  in
  { protocol = name;
    availability = avail;
    blackhole_ms = sum (fun r -> r.Faults.Observer.blackhole_ms);
    loop_ms = sum (fun r -> r.Faults.Observer.loop_ms);
    unavailable_ms = sum (fun r -> r.Faults.Observer.unavailable_ms);
    unroutable_ms = sum (fun r -> r.Faults.Observer.unroutable_ms);
    pair_unavail = concat (fun r -> r.Faults.Observer.pair_unavail_ms);
    recovery = concat (fun r -> r.Faults.Observer.recovery_ms);
    ttfc = concat (fun r -> r.Faults.Observer.ttfc_ms);
    messages = sumi (fun r -> r.Faults.Observer.stats.Sim.Engine.messages);
    losses = sumi (fun r -> r.Faults.Observer.stats.Sim.Engine.losses) }

let run cfg =
  let pairs =
    Inputs.sample_pairs cfg (Inputs.brite cfg)
      ~count:cfg.Config.resilience_pairs
  in
  let per_scenario =
    Pool.parallel_map_array
      (fun i -> run_scenario cfg ~pairs i)
      (Array.init cfg.Config.resilience_scenarios Fun.id)
  in
  let names = List.map fst (protocol_makers cfg) in
  let nth_run reports p = List.nth reports p in
  let rows =
    List.mapi
      (fun p name ->
        aggregate name
          (Array.to_list
             (Array.map
                (fun reports ->
                  let r, _, _ = nth_run reports p in
                  r)
                per_scenario)))
      names
  in
  let digests =
    if cfg.Config.trace_digest = None then []
    else
      List.mapi
        (fun p name ->
          ( name,
            Array.map
              (fun reports ->
                match nth_run reports p with
                | _, Some d, _ -> d
                | _, None, _ -> "-")
              per_scenario ))
        names
  in
  (* Scenario registries merge in index order; the merge is commutative
     and associative, so the pooled scheduling can't change the result. *)
  let registries =
    if not cfg.Config.emit_metrics then []
    else
      List.mapi
        (fun p name ->
          let dst = Obs.Metrics.create () in
          Array.iter
            (fun reports ->
              match nth_run reports p with
              | _, _, Some m -> Obs.Metrics.merge_into ~dst m
              | _, _, None -> ())
            per_scenario;
          (name, dst))
        names
  in
  (match cfg.Config.trace_digest with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    List.iter
      (fun (name, ds) ->
        Array.iteri
          (fun i d ->
            Printf.fprintf oc "scenario=%d protocol=%s digest=%s\n" i name d)
          ds)
      digests;
    close_out oc);
  { scenarios = cfg.Config.resilience_scenarios;
    pairs = List.length pairs;
    horizon = cfg.Config.resilience_horizon;
    rows;
    digests;
    registries }

let find_row r name = List.find (fun a -> a.protocol = name) r.rows

let percentiles = [ 50.0; 75.0; 90.0; 95.0; 99.0; 100.0 ]

let mean_or_zero xs = if Array.length xs = 0 then 0.0 else Stats.mean xs

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Resilience under churn: %d scenarios x %d probed pairs, %.0f ms \
        window each.\n\
        Transient correctness of the data plane while converging \
        (paper Figs. 1/2).\n"
       r.scenarios r.pairs r.horizon);
  Buffer.add_string buf
    "  protocol  avail%  blackhole(ms)  loop(ms)  excused(ms)  \
     recovery(ms)  ttfc(ms)     msgs    lost\n";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %-8s  %6.2f  %13.1f  %8.1f  %11.1f  %12.1f  %8.1f  %7d  %6d\n"
           a.protocol
           (100.0 *. a.availability)
           a.blackhole_ms a.loop_ms a.unroutable_ms
           (mean_or_zero a.recovery) (mean_or_zero a.ttfc) a.messages
           a.losses))
    r.rows;
  Buffer.add_string buf
    "  Per-pair unavailability CDF (ms of blackhole+loop per probed \
     pair per scenario):\n  percentile";
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf " %12s" a.protocol))
    r.rows;
  Buffer.add_string buf "\n";
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "  %8.0f%% " p);
      List.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf " %10.1fms"
               (if Array.length a.pair_unavail = 0 then 0.0
                else Stats.percentile a.pair_unavail p)))
        r.rows;
      Buffer.add_string buf "\n")
    percentiles;
  let centaur = find_row r "centaur" and bgp = find_row r "bgp" in
  Buffer.add_string buf
    (Printf.sprintf
       "  Centaur unavailable %.1f pair-ms vs BGP %.1f (%.1fx less): local \
        P-graph failover\n  closes the Figure 1/2 blackhole/loop windows \
        that BGP's path exploration leaves open.\n"
       centaur.unavailable_ms bgp.unavailable_ms
       (if centaur.unavailable_ms > 0.0 then
          bgp.unavailable_ms /. centaur.unavailable_ms
        else infinity));
  (* Opt-in blocks only: the default rendering stays byte-identical so
     baseline comparisons of `exp resilience` output keep holding. *)
  List.iter
    (fun (name, m) ->
      Buffer.add_string buf (Printf.sprintf "  metrics[%s]:\n" name);
      List.iter
        (fun line ->
          if line <> "" then Buffer.add_string buf ("    " ^ line ^ "\n"))
        (String.split_on_char '\n' (Obs.Metrics.render m)))
    r.registries;
  List.iter
    (fun (name, ds) ->
      Buffer.add_string buf (Printf.sprintf "  trace-digests[%s]:" name);
      Array.iter (fun d -> Buffer.add_string buf (" " ^ d)) ds;
      Buffer.add_string buf "\n")
    r.digests;
  Buffer.contents buf
