(** Experiment input topologies, derived deterministically from the
    configuration seed. *)

val caida : Config.t -> Topology.t
(** Synthetic stand-in for the paper's CAIDA Sep'07 topology. *)

val hetop : Config.t -> Topology.t
(** Synthetic stand-in for the paper's HeTop May'05 topology (peering
    rich). *)

val brite : Config.t -> Topology.t
(** The §5.3 prototype topology: BRITE Barabási–Albert with degree-tier
    relationships and uniform 0–5 ms delays. *)

val brite_sized : Config.t -> n:int -> Topology.t
(** Same model at an explicit size (the Figure 8 sweep). *)

val sample_sources : Config.t -> Topology.t -> int list
(** [as_sources] distinct nodes for the P-graph measurements. *)

val sample_links : Config.t -> Topology.t -> count:int -> int list
(** Distinct link ids for flip workloads. *)

val sample_dests : Config.t -> Topology.t -> count:int -> int list
(** Distinct destination nodes for failure sweeps ([count] is clamped to
    the node count). *)

val sample_pairs : Config.t -> Topology.t -> count:int -> (int * int) list
(** Distinct (src, dest) probe pairs with [src <> dest], for the
    resilience observer ([count] is clamped to the number of ordered
    pairs). *)
