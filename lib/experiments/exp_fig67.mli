(** Figures 6 and 7 — convergence behaviour under link flips.

    The §5.3 prototype experiment: a BRITE topology (paper: 500 nodes,
    link delays uniform in 0–5 ms, CPU delay ignored) stabilizes, then
    links are flipped one at a time — removed, re-converge, restored,
    re-converge — measuring the duration and message count of every
    re-convergence.

    Figure 6 compares the convergence-time CDFs of Centaur and BGP
    (Centaur "converges much faster than BGP almost all the time");
    Figure 7 compares the message-count CDFs of Centaur and OSPF
    (Centaur beats OSPF "for 82% of the cases"). *)

type result = {
  centaur : Protocols.Convergence.result;
  bgp : Protocols.Convergence.result;
  bgp_rcn : Protocols.Convergence.result;
      (** BGP with root-cause notification — the paper's §6.2 claims
          Centaur carries the same information in compressed form, so
          RCN should match Centaur's convergence time while keeping
          BGP's per-prefix message cost. *)
  ospf : Protocols.Convergence.result;
  flipped_links : int list;
}

val run : Config.t -> result

val centaur_faster_than_bgp : result -> float
(** Fraction of flips where Centaur re-converged strictly faster. *)

val centaur_lighter_than_ospf : result -> float
(** Fraction of flips where Centaur sent strictly fewer messages than
    OSPF — the paper's 82% number. *)

val render_fig6 : result -> string
(** Convergence-time CDF table, Centaur vs BGP. *)

val render_fig7 : result -> string
(** Convergence-load CDF table, Centaur vs OSPF. *)
