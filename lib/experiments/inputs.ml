(* Independent streams per artifact, all derived from the master seed so
   any experiment can be regenerated in isolation. *)
let stream cfg salt = Rng.create ((cfg.Config.seed * 1_000_003) + salt)

let caida cfg =
  As_gen.generate (stream cfg 1) (As_gen.caida_like ~n:cfg.Config.as_nodes)

let hetop cfg =
  As_gen.generate (stream cfg 2) (As_gen.hetop_like ~n:cfg.Config.as_nodes)

let brite_sized cfg ~n =
  Brite.annotated (stream cfg (3 + n)) ~n ~m:cfg.Config.brite_m ~max_delay:5.0
    ~num_tiers:4

let brite cfg = brite_sized cfg ~n:cfg.Config.brite_nodes

let sample_sources cfg topo =
  let rng = stream cfg 4 in
  let nodes = Array.init (Topology.num_nodes topo) (fun i -> i) in
  Array.to_list (Rng.sample rng cfg.Config.as_sources nodes)

let sample_links cfg topo ~count =
  let rng = stream cfg 5 in
  let links = Array.init (Topology.num_links topo) (fun i -> i) in
  Array.to_list (Rng.sample rng count links)

let sample_dests cfg topo ~count =
  let rng = stream cfg 7 in
  let nodes = Array.init (Topology.num_nodes topo) (fun i -> i) in
  Array.to_list (Rng.sample rng (min count (Array.length nodes)) nodes)

let sample_pairs cfg topo ~count =
  let n = Topology.num_nodes topo in
  if n < 2 then invalid_arg "Inputs.sample_pairs: need at least two nodes";
  let count = min count (n * (n - 1)) in
  let rng = stream cfg 6 in
  let seen = Hashtbl.create (2 * count) in
  let rec draw acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let s = Rng.int rng n in
      let d = Rng.int rng n in
      if s = d || Hashtbl.mem seen (s, d) then draw acc remaining
      else begin
        Hashtbl.replace seen (s, d) ();
        draw ((s, d) :: acc) (remaining - 1)
      end
    end
  in
  draw [] count
