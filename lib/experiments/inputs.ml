(* Independent streams per artifact, all derived from the master seed so
   any experiment can be regenerated in isolation. *)
let stream cfg salt = Rng.create ((cfg.Config.seed * 1_000_003) + salt)

let caida cfg =
  As_gen.generate (stream cfg 1) (As_gen.caida_like ~n:cfg.Config.as_nodes)

let hetop cfg =
  As_gen.generate (stream cfg 2) (As_gen.hetop_like ~n:cfg.Config.as_nodes)

let brite_sized cfg ~n =
  Brite.annotated (stream cfg (3 + n)) ~n ~m:cfg.Config.brite_m ~max_delay:5.0
    ~num_tiers:4

let brite cfg = brite_sized cfg ~n:cfg.Config.brite_nodes

let sample_sources cfg topo =
  let rng = stream cfg 4 in
  let nodes = Array.init (Topology.num_nodes topo) (fun i -> i) in
  Array.to_list (Rng.sample rng cfg.Config.as_sources nodes)

let sample_links cfg topo ~count =
  let rng = stream cfg 5 in
  let links = Array.init (Topology.num_links topo) (fun i -> i) in
  Array.to_list (Rng.sample rng count links)
