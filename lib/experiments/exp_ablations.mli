(** Ablation benches for the design choices DESIGN.md calls out.

    - {b MRAI}: Figure 6's convergence-time gap is driven by BGP's
      batching timer. Sweeping MRAI (0 disables it) shows the gap
      collapse to pure propagation delay — evidence that Centaur's
      advantage is exactly the removal of path-exploration rounds.
    - {b Split horizon}: Centaur's sender-side split horizon (never
      announce a path to a neighbor already on it) vs. receiver-side
      import filtering only (the paper's §4.3 Step 2); measures the
      wasted announcements the receiver-side-only variant sends. *)

type mrai_row = {
  mrai : float;
  bgp_median_ms : float;
  bgp_p95_ms : float;
  centaur_median_ms : float;  (** same workload, for reference *)
}

val run_mrai : Config.t -> mrai_row list
(** Flip workload on a reduced BRITE topology under MRAI of 0, 10 and
    30 ms. *)

val render_mrai : mrai_row list -> string

val run_multipath : Config.t -> Centaur.Multipath_eval.report list
(** §7 multi-path compactness: k ∈ {1, 2, 3} on the caida-like
    topology, averaged over the sampled sources (reports summed). *)

val render_multipath : Centaur.Multipath_eval.report list -> string
