type entry = {
  id : string;
  title : string;
  run : Config.t -> string;
}

let all =
  [ { id = "table3";
      title = "Characteristics of input topologies";
      run = (fun cfg -> Exp_table3.render (Exp_table3.run cfg)) };
    { id = "table4";
      title = "Structural characteristics of P-graphs";
      run = (fun cfg -> Exp_table45.render_table4 (Exp_table45.run cfg)) };
    { id = "table5";
      title = "Permission List entry distribution";
      run = (fun cfg -> Exp_table45.render_table5 (Exp_table45.run cfg)) };
    { id = "fig5";
      title = "Immediate overhead of a single link failure";
      run = (fun cfg -> Exp_fig5.render (Exp_fig5.run cfg)) };
    { id = "fig6";
      title = "Convergence time CDF (Centaur vs BGP)";
      run = (fun cfg -> Exp_fig67.render_fig6 (Exp_fig67.run cfg)) };
    { id = "fig7";
      title = "Convergence load CDF (Centaur vs OSPF)";
      run = (fun cfg -> Exp_fig67.render_fig7 (Exp_fig67.run cfg)) };
    { id = "fig8";
      title = "Scalability of update overhead";
      run = (fun cfg -> Exp_fig8.render (Exp_fig8.run cfg)) };
    { id = "scale";
      title = "Size scaling of the analysis pipeline (300 -> 26k nodes)";
      run =
        (fun cfg ->
          let r = Exp_scale.run cfg in
          (* Timings/RSS are environment noise — keep them off stdout so
             the deterministic table stays diffable. *)
          prerr_string (Exp_scale.render_timing r);
          Exp_scale.render r) };
    { id = "churnrate";
      title =
        "Sustained churn: wave-batched vs event-at-a-time ingestion \
         (Centaur vs BGP vs OSPF)";
      run =
        (fun cfg ->
          let r = Exp_churnrate.run cfg in
          (* Wall-clock throughput is environment noise — stderr only,
             so the deterministic table stays diffable. *)
          prerr_string (Exp_churnrate.render_timing r);
          Exp_churnrate.render r) };
    { id = "resilience";
      title = "Routability over time under churn (Centaur vs BGP vs OSPF)";
      run = (fun cfg -> Exp_resilience.render (Exp_resilience.run cfg)) };
    { id = "containment";
      title = "Containment of route leaks and prefix hijacks (Centaur vs BGP)";
      run = (fun cfg -> Exp_containment.render (Exp_containment.run cfg)) };
    { id = "convergence";
      title =
        "Convergence safety: analyzer verdicts vs bounded engine runs \
         (certified / flagged / inconclusive)";
      run = (fun cfg -> Exp_convergence.render (Exp_convergence.run cfg)) };
    { id = "ablation-mrai";
      title = "MRAI sweep (what drives the Figure 6 gap)";
      run = (fun cfg -> Exp_ablations.render_mrai (Exp_ablations.run_mrai cfg)) };
    { id = "ablation-multipath";
      title = "Multi-path compactness (paper Â§7)";
      run =
        (fun cfg ->
          Exp_ablations.render_multipath (Exp_ablations.run_multipath cfg)) } ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all
