type row = {
  nodes : int;
  links : int;
  centaur_msgs_per_event : float;
  bgp_msgs_per_event : float;
  centaur_cold_msgs : int;
  bgp_cold_msgs : int;
}

type result = row list

let row_for cfg ~n =
  let links_count = Topology.num_links (Inputs.brite_sized cfg ~n) in
  let events = max 1 (cfg.Config.fig8_events / 2) in
  let links =
    Inputs.sample_links cfg (Inputs.brite_sized cfg ~n) ~count:events
  in
  let measure make =
    let runner = make (Inputs.brite_sized cfg ~n) in
    let cold = runner.Sim.Runner.cold_start () in
    let result = Protocols.Convergence.flip_links_preconverged runner ~links in
    let msgs = Protocols.Convergence.message_counts result in
    (Stats.mean msgs, cold.Sim.Engine.messages)
  in
  let centaur_rate, centaur_cold = measure Protocols.Centaur_net.network in
  let bgp_rate, bgp_cold =
    measure (Protocols.Bgp_net.network ~mrai:cfg.Config.mrai)
  in
  { nodes = n;
    links = links_count;
    centaur_msgs_per_event = centaur_rate;
    bgp_msgs_per_event = bgp_rate;
    centaur_cold_msgs = centaur_cold;
    bgp_cold_msgs = bgp_cold }

(* Each row builds its own topologies and simulators from per-size RNG
   streams, so the sizes are independent and fan out across the domain
   pool; collecting by index keeps the row order (and every number in
   it) identical to the sequential sweep. *)
let run cfg =
  Array.to_list
    (Pool.parallel_map_array
       (fun n -> row_for cfg ~n)
       (Array.of_list cfg.Config.fig8_sizes))

let render rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 8. Scalability: mean update messages per link event.\n";
  Buffer.add_string buf
    "  nodes  links   Centaur/evt     BGP/evt   ratio   cold C      cold B\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %5d  %5d  %10.1f  %10.1f  %5.1fx  %8d  %8d\n"
           r.nodes r.links r.centaur_msgs_per_event r.bgp_msgs_per_event
           (if r.centaur_msgs_per_event > 0.0 then
              r.bgp_msgs_per_event /. r.centaur_msgs_per_event
            else infinity)
           r.centaur_cold_msgs r.bgp_cold_msgs))
    rows;
  Buffer.add_string buf
    "  (paper: the gap between BGP and Centaur widens with topology size)\n";
  Buffer.contents buf
