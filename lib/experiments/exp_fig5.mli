(** Figure 5 — immediate overhead of a single link failure.

    For every link of the AS topology, the number of update messages
    generated as the immediate (non-cascading) result of its failure:
    per-(session, prefix) withdrawals for BGP, per-(session, link)
    withdrawals for Centaur. The paper reports Centaur "roughly 100 to
    1000 times fewer update messages" on the RouteViews-derived
    topology.

    Two accountings are reported: one destination prefix per AS, and a
    realistic skewed prefix table (mean 10 prefixes/AS — the global
    table carries an order of magnitude more prefixes than ASes). BGP's
    cost multiplies per prefix; Centaur's per-link withdrawals do not
    (paper §6.4), which with topology-size scaling is what lands the
    paper's topology in the 100–1000× band. *)

type series = {
  topology : string;
  prefixes_per_as : float;
  bgp : float array;      (** per-link immediate update counts *)
  centaur : float array;
  mean_ratio : float;     (** mean BGP / mean Centaur *)
}

type result = series list

val run : Config.t -> result

val render : result -> string
