type mrai_row = {
  mrai : float;
  bgp_median_ms : float;
  bgp_p95_ms : float;
  centaur_median_ms : float;
}

let run_mrai cfg =
  let n = max 60 (cfg.Config.brite_nodes / 3) in
  let topo () = Inputs.brite_sized cfg ~n in
  let flips = max 6 (cfg.Config.flips / 3) in
  let links = Inputs.sample_links cfg (topo ()) ~count:flips in
  let centaur_times =
    Protocols.Convergence.times
      (Protocols.Convergence.flip_links
         (Protocols.Centaur_net.network (topo ()))
         ~links)
  in
  let centaur_median = Stats.median centaur_times in
  List.map
    (fun mrai ->
      let times =
        Protocols.Convergence.times
          (Protocols.Convergence.flip_links
             (Protocols.Bgp_net.network ~mrai (topo ()))
             ~links)
      in
      { mrai;
        bgp_median_ms = Stats.median times;
        bgp_p95_ms = Stats.percentile times 95.0;
        centaur_median_ms = centaur_median })
    [ 0.0; 10.0; 30.0 ]

let render_mrai rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Ablation: BGP MRAI sweep (re-convergence times, same flip workload).\n";
  Buffer.add_string buf
    "  MRAI(ms)   BGP median   BGP p95   Centaur median\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %7.1f  %9.2fms %8.2fms %11.2fms\n" r.mrai
           r.bgp_median_ms r.bgp_p95_ms r.centaur_median_ms))
    rows;
  Buffer.add_string buf
    "  (with MRAI off, BGP converges at propagation speed and the\n\
    \   Figure 6 gap collapses: the gap is the cost of MRAI-paced path\n\
    \   exploration, which Centaur's root-cause withdrawals avoid)\n";
  Buffer.contents buf

let run_multipath cfg =
  let topo = Inputs.caida cfg in
  let sources = Inputs.sample_sources cfg topo in
  (* One solver sweep covers every source and every k (the k-best lists
     are nested prefixes). Aggregate per-source reports into one row
     per k. *)
  let ranked = Multipath.ranked_sets topo ~kmax:3 ~sources in
  List.map
    (fun k ->
      let reports =
        List.map
          (fun src ->
            let paths =
              List.concat_map
                (fun per_dest -> List.filteri (fun i _ -> i < k) per_dest)
                (Hashtbl.find ranked src)
            in
            Centaur.Multipath_eval.measure_paths ~k ~src paths)
          sources
      in
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
      let paths = sum (fun r -> r.Centaur.Multipath_eval.paths) in
      let pv_hops = sum (fun r -> r.Centaur.Multipath_eval.pv_hops) in
      let links = sum (fun r -> r.Centaur.Multipath_eval.centaur_links) in
      let entries = sum (fun r -> r.Centaur.Multipath_eval.pl_entries) in
      let derived = sum (fun r -> r.Centaur.Multipath_eval.derived_paths) in
      { Centaur.Multipath_eval.k;
        dests = sum (fun r -> r.Centaur.Multipath_eval.dests);
        paths;
        pv_hops;
        centaur_links = links;
        pl_entries = entries;
        compaction =
          float_of_int pv_hops /. float_of_int (max 1 (links + entries));
        derived_paths = derived;
        excess =
          (if paths = 0 then 0.0
           else float_of_int (derived - paths) /. float_of_int paths) })
    [ 1; 2; 3 ]

let render_multipath = Centaur.Multipath_eval.render
