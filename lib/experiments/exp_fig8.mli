(** Figure 8 — scalability of update overhead with topology size.

    "We create topologies of various sizes and cold start the protocols
    until they stabilize … we give the update overhead of Centaur and
    BGP under different topology sizes given a routing update event. It
    is apparent that Centaur presents more distinct advantage on larger
    topologies."

    For every size in the sweep we cold-start both protocols on the same
    BRITE graph and measure the mean messages per link event (a flip
    down + up counts as two events). *)

type row = {
  nodes : int;
  links : int;
  centaur_msgs_per_event : float;
  bgp_msgs_per_event : float;
  centaur_cold_msgs : int;
  bgp_cold_msgs : int;
}

type result = row list

val run : Config.t -> result

val render : result -> string
