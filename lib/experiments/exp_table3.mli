(** Table 3 — characteristics of input topologies.

    Paper row format: Name/Date | Node/Link | Peering/Provider/Sibling.
    Ours reports the synthetic stand-ins at the configured scale; the
    relationship {e mix} (fractions) is what must match, since the
    absolute counts scale with [as_nodes]. *)

type row = {
  name : string;
  nodes : int;
  links : int;
  peering : int;
  provider : int;
  sibling : int;
}

type result = row list

val run : Config.t -> result

val row_of_topology : string -> Topology.t -> row

val render : result -> string
(** Text table in the paper's column layout, with the relationship
    fractions appended for shape comparison. *)
