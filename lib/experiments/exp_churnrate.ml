(* Sustained-churn throughput: the experiment the delta-wave refactor
   exists for. Each cell replays one seeded update stream (link flaps +
   policy flips + loss windows at a fixed offered load) against one
   protocol, either event-at-a-time (the PR-2 ingestion baseline) or in
   batched delta waves, and records what the batching buys (coalesced
   work, wall-clock throughput) and what it costs (per-update
   enqueue->stable latency, which now includes the window's queueing
   delay). *)

let policy_share = 0.15

let loss_share = 0.1

let protocols = [ "centaur"; "bgp"; "ospf" ]

type cell = {
  protocol : string;
  rate : float;        (* offered load, stream arrivals/ms *)
  batched : bool;      (* delta waves vs event-at-a-time *)
  events : int;
  waves : int;         (* applications drained *)
  cancelled : int;     (* link events coalesced away *)
  messages : int;
  units : int;
  p50 : float;         (* enqueue->stable latency percentiles, sim ms *)
  p99 : float;
  p999 : float;
  makespan : float;    (* sim ms from first arrival to last stable *)
  wall_ns : int;       (* replay wall time, environment-dependent *)
}

type result = {
  window : float;
  duration : float;
  cells : cell list;   (* rate-major; per rate: protocol order, waves
                          before event-at-a-time *)
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* One replay on private instances: the engine mutates the topology and
   the compiled policy, so every cell builds its own. The stream depends
   only on (seed, rate, topology), so the waves and event cells of one
   (rate, protocol) pair replay byte-identical events. *)
let run_cell cfg ~rate_idx ~rate ~protocol ~batched =
  let topo = Inputs.brite cfg in
  let policy = Policy.default () in
  let make = Option.get (Protocols.Proto_table.find protocol) in
  let runner =
    make ~policy ~plist_fp_rate:cfg.Config.plist_fp_rate ~mrai:cfg.Config.mrai
      topo
  in
  let stream =
    Stream.Update_stream.generate
      ~seed:((cfg.Config.seed * 1_000_003) + 11_000 + rate_idx)
      ~rate ~duration:cfg.Config.churn_duration ~policy_share ~loss_share topo
  in
  let mode =
    if batched then Stream.Replay.Waves cfg.Config.churn_window
    else Stream.Replay.Event_at_a_time
  in
  let t0 = now_ns () in
  let o = Stream.Replay.replay ~policy ~topo ~stream ~mode runner in
  let wall_ns = now_ns () - t0 in
  let pct p =
    if Array.length o.Stream.Replay.latencies = 0 then 0.0
    else Stats.percentile o.Stream.Replay.latencies p
  in
  { protocol;
    rate;
    batched;
    events = o.Stream.Replay.events;
    waves = o.Stream.Replay.waves;
    cancelled = o.Stream.Replay.cancelled;
    messages = o.Stream.Replay.stats.Sim.Engine.messages;
    units = o.Stream.Replay.stats.Sim.Engine.units;
    p50 = pct 50.0;
    p99 = pct 99.0;
    p999 = pct 99.9;
    makespan = o.Stream.Replay.makespan;
    wall_ns }

let run cfg =
  let items =
    List.concat_map
      (fun (rate_idx, rate) ->
        List.concat_map
          (fun protocol ->
            [ (rate_idx, rate, protocol, true);
              (rate_idx, rate, protocol, false) ])
          protocols)
      (List.mapi (fun i r -> (i, r)) cfg.Config.churn_rates)
  in
  let cells =
    Pool.parallel_map_array
      (fun (rate_idx, rate, protocol, batched) ->
        run_cell cfg ~rate_idx ~rate ~protocol ~batched)
      (Array.of_list items)
  in
  { window = cfg.Config.churn_window;
    duration = cfg.Config.churn_duration;
    cells = Array.to_list cells }

let mode_name batched = if batched then "waves" else "event"

(* Deterministic in the seed: everything here is sim-time or counted
   work, so CI can diff this table across reruns and domain counts. *)
let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Churn streaming: sustained update load, batched delta waves \
        (w=%.0f ms) vs\nevent-at-a-time, %.0f ms arrival window per \
        replay (latencies are sim-time\nenqueue->stable, so waves pay \
        their queueing delay here).\n"
       r.window r.duration);
  Buffer.add_string buf
    "  rate(/ms)  protocol  mode    events  waves  coalesced  p50(ms)  \
     p99(ms)  p999(ms)  makespan(ms)     msgs\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %9.2f  %-8s  %-6s  %6d  %5d  %9d  %7.1f  %7.1f  %8.1f  \
            %12.1f  %7d\n"
           c.rate c.protocol (mode_name c.batched) c.events c.waves
           c.cancelled c.p50 c.p99 c.p999 c.makespan c.messages))
    r.cells;
  Buffer.add_string buf
    "\n(wall-clock throughput is environment-dependent; `exp churnrate` \
     prints\n it to stderr and `bench churn` records it in \
     BENCH_RESULTS.json)\n";
  Buffer.contents buf

let throughput c =
  if c.wall_ns = 0 then infinity
  else float_of_int c.events /. (float_of_int c.wall_ns /. 1e9)

let find_cell r ~rate ~protocol ~batched =
  List.find
    (fun c -> c.rate = rate && c.protocol = protocol && c.batched = batched)
    r.cells

let render_timing r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "  rate(/ms)  protocol     waves-upd/s     event-upd/s  speedup\n";
  List.iter
    (fun c ->
      if c.batched then begin
        let e = find_cell r ~rate:c.rate ~protocol:c.protocol ~batched:false in
        Buffer.add_string buf
          (Printf.sprintf "  %9.2f  %-8s  %14.0f  %14.0f  %6.2fx\n" c.rate
             c.protocol (throughput c) (throughput e)
             (float_of_int e.wall_ns /. float_of_int (max 1 c.wall_ns)))
      end)
    r.cells;
  Buffer.contents buf
