(** Reliability under churn: the transient-correctness sweep.

    Runs seeded fault scenarios (link flaps, a node outage, an SRLG cut,
    a lossy-link window — {!Faults.Scenario.random_churn}) against
    Centaur, BGP and OSPF on identical BRITE topologies, probing sampled
    (src, dest) pairs mid-convergence with {!Faults.Observer}. Renders a
    per-protocol availability table (blackhole time, transient-loop
    time, recovery and time-to-first-correct-path) plus the per-pair
    unavailability CDF. Scenarios fan out over the domain pool;
    aggregation is by index, so the output is byte-identical at any
    [CENTAUR_DOMAINS]. *)

type agg = {
  protocol : string;
  availability : float;         (** delivered / routable pair-samples *)
  blackhole_ms : float;
  loop_ms : float;
  unavailable_ms : float;       (** blackhole + loop *)
  unroutable_ms : float;        (** excused: policy offered no route *)
  pair_unavail : float array;
  recovery : float array;
  ttfc : float array;
  messages : int;
  losses : int;
}

type result = {
  scenarios : int;
  pairs : int;
  horizon : float;
  rows : agg list;  (** centaur, bgp, ospf *)
  digests : (string * string array) list;
      (** per protocol, one MD5 of each scenario's normalized trace
          digest; [[]] unless [Config.trace_digest] is set *)
  registries : (string * Obs.Metrics.t) list;
      (** per protocol, the scenario registries merged in index order;
          [[]] unless [Config.emit_metrics] *)
}

val run : Config.t -> result
(** When [Config.trace_digest] is [Some path], every protocol run is
    traced and the per-run digests are also written to [path] (the CI
    determinism gate diffs two such files). The aggregate rows are
    unaffected by either observability option. *)

val find_row : result -> string -> agg
(** Raises [Not_found] on an unknown protocol name. *)

val render : result -> string
