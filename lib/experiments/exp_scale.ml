type point = {
  nodes : int;
  links : int;
  sources : int;
  sweep_dests : int;
  stats : Centaur.Static.pgraph_stats;
  bgp_units : int;
  centaur_units : int;
  gen_ns : int;
  analyze_ns : int;
  sweep_ns : int;
  minor_words : float;
  major_words : float;
  peak_rss_kb : int;
}

type result = point list

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* The 100k-node point takes minutes and ~GBs even on a fast machine, so
   it never runs implicitly: CENTAUR_SCALE_XL=1 appends it to whatever
   size list the configuration carries. *)
let xl_size = 100_000

let effective_scale_sizes cfg =
  let sizes = cfg.Config.scale_sizes in
  if Sys.getenv_opt "CENTAUR_SCALE_XL" = Some "1"
     && not (List.mem xl_size sizes)
  then sizes @ [ xl_size ]
  else sizes

let run_point cfg ~n =
  let cfg_n =
    { cfg with Config.as_nodes = n; as_sources = min cfg.Config.scale_sources n }
  in
  let t0 = now_ns () in
  let topo = Inputs.caida cfg_n in
  let gen_ns = now_ns () - t0 in
  let sources = Inputs.sample_sources cfg_n topo in
  let mw0 = Gc.minor_words () in
  let st0 = Gc.quick_stat () in
  let t1 = now_ns () in
  let stats = Centaur.Static.analyze topo ~sources in
  let analyze_ns = now_ns () - t1 in
  let st1 = Gc.quick_stat () in
  let minor_words = Gc.minor_words () -. mw0 in
  let major_words = st1.Gc.major_words -. st0.Gc.major_words in
  let dests = Inputs.sample_dests cfg_n topo ~count:cfg.Config.scale_dests in
  let t2 = now_ns () in
  let overhead = Centaur.Static.immediate_overhead ~dests topo in
  let sweep_ns = now_ns () - t2 in
  let bgp_units =
    Array.fold_left (fun acc o -> acc + o.Centaur.Static.bgp_units) 0 overhead
  in
  let centaur_units =
    Array.fold_left
      (fun acc o -> acc + o.Centaur.Static.centaur_units)
      0 overhead
  in
  { nodes = n;
    links = Topology.num_links topo;
    sources = List.length sources;
    sweep_dests = List.length dests;
    stats;
    bgp_units;
    centaur_units;
    gen_ns;
    analyze_ns;
    sweep_ns;
    minor_words;
    major_words;
    peak_rss_kb = Option.value (Sys_stats.peak_rss_kb ()) ~default:0 }

let run cfg = List.map (fun n -> run_point cfg ~n) (effective_scale_sizes cfg)

(* Deterministic rendering only — identical for any CENTAUR_DOMAINS and
   across runs with the same seed, so CI can diff it. Timings and memory
   live in [render_timing]. *)
let render points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Size scaling: streamed P-graph analysis + failure sweep per topology \
     size.\n\n";
  Buffer.add_string buf
    "   nodes    links  srcs  avg-links  avg-PLs  PL-bytes  dests \
     bgp-units  centaur-units    ratio\n";
  List.iter
    (fun p ->
      let s = p.stats in
      Buffer.add_string buf
        (Printf.sprintf
           "%8d %8d %5d  %9.1f  %7.1f  %8.1f  %5d %9d  %13d  %7.1f\n"
           p.nodes p.links p.sources s.Centaur.Static.avg_links
           s.Centaur.Static.avg_plists
           s.Centaur.Static.avg_plist_compressed_bytes p.sweep_dests
           p.bgp_units p.centaur_units
           (float_of_int p.bgp_units
           /. float_of_int (max 1 p.centaur_units))))
    points;
  Buffer.add_string buf
    "\n(timings and peak RSS are environment-dependent; `exp scale` \
     prints them\n to stderr and `bench scale` records them in \
     BENCH_RESULTS.json)\n";
  Buffer.contents buf

let render_timing points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "   nodes    gen-ms  analyze-ms   sweep-ms  minor-Mwords  \
     major-Mwords  peak-rss-MB\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%8d  %8.1f  %10.1f  %9.1f  %12.1f  %12.1f  %11.1f\n"
           p.nodes
           (float_of_int p.gen_ns /. 1e6)
           (float_of_int p.analyze_ns /. 1e6)
           (float_of_int p.sweep_ns /. 1e6)
           (p.minor_words /. 1e6)
           (p.major_words /. 1e6)
           (float_of_int p.peak_rss_kb /. 1024.)))
    points;
  Buffer.contents buf
