type result = {
  centaur : Protocols.Convergence.result;
  bgp : Protocols.Convergence.result;
  bgp_rcn : Protocols.Convergence.result;
  ospf : Protocols.Convergence.result;
  flipped_links : int list;
}

let run cfg =
  (* Each protocol gets its own topology instance (the engines mutate
     link state), generated from the same seed — identical graphs. *)
  let topo () = Inputs.brite cfg in
  let links = Inputs.sample_links cfg (topo ()) ~count:cfg.Config.flips in
  let run_protocol runner =
    Protocols.Convergence.flip_links runner ~links
  in
  { centaur = run_protocol (Protocols.Centaur_net.network (topo ()));
    bgp =
      run_protocol
        (Protocols.Bgp_net.network ~mrai:cfg.Config.mrai (topo ()));
    bgp_rcn =
      run_protocol
        (Protocols.Bgp_net.network ~mrai:cfg.Config.mrai ~rcn:true (topo ()));
    ospf = run_protocol (Protocols.Ospf_net.network (topo ()));
    flipped_links = links }

let centaur_faster_than_bgp r =
  Stats.fraction_below
    (Protocols.Convergence.times r.centaur)
    (Protocols.Convergence.times r.bgp)

let centaur_lighter_than_ospf r =
  Stats.fraction_below
    (Protocols.Convergence.message_counts r.centaur)
    (Protocols.Convergence.message_counts r.ospf)

let percentiles = [ 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0; 100.0 ]

let cdf_table ~header ~unit series =
  let buf = Buffer.create 512 in
  Buffer.add_string buf header;
  Buffer.add_string buf "  percentile";
  List.iter
    (fun (name, _) -> Buffer.add_string buf (Printf.sprintf " %14s" name))
    series;
  Buffer.add_string buf "\n";
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "  %8.0f%% " p);
      List.iter
        (fun (_, xs) ->
          Buffer.add_string buf
            (Printf.sprintf " %12.2f%s" (Stats.percentile xs p) unit))
        series;
      Buffer.add_string buf "\n")
    percentiles;
  Buffer.contents buf

let render_fig6 r =
  let t_centaur = Protocols.Convergence.times r.centaur in
  let t_bgp = Protocols.Convergence.times r.bgp in
  let t_rcn = Protocols.Convergence.times r.bgp_rcn in
  let table =
    cdf_table
      ~header:
        "Figure 6. Convergence time CDF after link flips (Centaur vs BGP;\n\
        \ BGP-RCN added as the paper's \xc2\xa76.2 equivalence check).\n"
      ~unit:"ms"
      [ ("Centaur", t_centaur); ("BGP", t_bgp); ("BGP-RCN", t_rcn) ]
  in
  table
  ^ Printf.sprintf
      "  Centaur faster than BGP in %.0f%% of re-convergences (paper: \
       \"almost all the time\").\n  BGP-RCN medians %.2fms vs Centaur \
       %.2fms: root-cause invalidation alone does\n  not close the gap - \
       Centaur's P-graphs let nodes recompute neighbors'\n  replacement \
       paths locally instead of waiting for them (nuances paper \
       \xc2\xa76.2)\n"
      (100.0 *. centaur_faster_than_bgp r)
      (Stats.median t_rcn) (Stats.median t_centaur)

let render_fig7 r =
  let m_centaur = Protocols.Convergence.message_counts r.centaur in
  let m_ospf = Protocols.Convergence.message_counts r.ospf in
  let table =
    cdf_table
      ~header:
        "Figure 7. Convergence load CDF after link flips (Centaur vs OSPF).\n"
      ~unit:"  "
      [ ("Centaur", m_centaur); ("OSPF", m_ospf) ]
  in
  table
  ^ Printf.sprintf
      "  Centaur fewer messages in %.0f%% of re-convergences (paper: 82%%)\n"
      (100.0 *. centaur_lighter_than_ospf r)
