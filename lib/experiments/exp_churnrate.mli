(** Sustained-churn throughput: batched delta waves vs event-at-a-time
    ingestion of the same seeded update streams, per protocol, across
    offered loads.

    For each [Config.churn_rates] entry and each protocol, the same
    stream replays twice — once per {!Stream.Replay.mode} — so the
    comparison isolates the ingestion strategy. The statistics (events,
    waves, coalesced link events, sim-time enqueue→stable latency
    percentiles, makespan, message counts) are deterministic in the
    seed; wall-clock throughput is not, and renders separately (the
    [exp scale] convention) so CI can diff the deterministic table. *)

type cell = {
  protocol : string;
  rate : float;      (** offered load, stream arrivals/ms *)
  batched : bool;    (** delta waves vs event-at-a-time *)
  events : int;
  waves : int;       (** applications drained *)
  cancelled : int;   (** link events coalesced away inside waves *)
  messages : int;
  units : int;
  p50 : float;       (** enqueue→stable latency percentiles, sim ms *)
  p99 : float;
  p999 : float;
  makespan : float;  (** sim ms from replay start to last stable point *)
  wall_ns : int;     (** replay wall time, environment-dependent *)
}

type result = {
  window : float;
  duration : float;
  cells : cell list;  (** rate-major; per rate: protocol order, waves
                          before event-at-a-time *)
}

val run : Config.t -> result

val find_cell : result -> rate:float -> protocol:string -> batched:bool -> cell
(** Raises [Not_found] on a cell outside the sweep. *)

val throughput : cell -> float
(** Wall-clock updates ingested per second. *)

val render : result -> string
(** Deterministic statistics table — byte-stable across runs and domain
    counts for a fixed seed. *)

val render_timing : result -> string
(** Environment-dependent columns: updates/sec per mode and the
    waves-over-event wall-clock speedup. *)
